package main

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	strix "repro"
	"repro/cmd/internal/cmdtest"
	"repro/internal/engine"
	"repro/internal/tfhe"
)

// startServer launches the built binary with args, waits for the
// listening announcement on stdout, and returns the process and bound
// address. The process is killed at test cleanup if still running.
func startServer(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	lineCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		if scanner.Scan() {
			lineCh <- scanner.Text()
		}
		close(lineCh)
		// Drain the rest so the child never blocks on a full pipe.
		for scanner.Scan() {
		}
	}()
	select {
	case line := <-lineCh:
		const prefix = "strixserv: listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected first line %q", line)
		}
		return cmd, strings.TrimPrefix(line, prefix)
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its address")
		return nil, ""
	}
}

// stopServer SIGTERMs the process and requires a clean drain + exit.
func stopServer(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestRestartPersistence is the durability acceptance test as a real
// process lifecycle: keys registered against one strixserv -data process
// must survive its SIGTERM drain, and a second process over the same
// directory must evaluate for the old session — bitwise identically —
// without any re-upload.
func TestRestartPersistence(t *testing.T) {
	bin := cmdtest.Build(t)
	dataDir := t.TempDir()

	rng := rand.New(rand.NewSource(7))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	bits := []bool{true, false, true, true}
	cts := make([]tfhe.LWECiphertext, len(bits))
	for i, b := range bits {
		cts[i] = sk.EncryptBool(rng, b)
	}

	cmd1, addr1 := startServer(t, bin, "-addr", "127.0.0.1:0", "-data", dataDir)
	cl1 := strix.Dial("http://"+addr1, "durable-client")
	if err := cl1.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}
	pre, err := cl1.GateBatch(engine.NOT, cts, nil)
	if err != nil {
		t.Fatal(err)
	}
	stopServer(t, cmd1)

	// Second process, same directory: the session must already be there.
	cmd2, addr2 := startServer(t, bin, "-addr", "127.0.0.1:0", "-data", dataDir)
	cl2 := strix.Dial("http://"+addr2, "durable-client")

	infos, err := cl2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "durable-client" || !infos[0].Persisted || infos[0].Warm {
		t.Fatalf("sessions after restart = %+v, want one cold persisted durable-client", infos)
	}

	post, err := cl2.GateBatch(engine.NOT, cts, nil)
	if err != nil {
		t.Fatalf("restored session failed after restart: %v", err)
	}
	for i := range pre {
		if !tfhe.EqualLWE(pre[i], post[i]) {
			t.Fatalf("output %d differs across process restart", i)
		}
		if got := sk.DecryptBool(post[i]); got != !bits[i] {
			t.Errorf("NOT(bits[%d]) = %v, want %v", i, got, !bits[i])
		}
	}
	stopServer(t, cmd2)
}

// TestSmoke starts strixserv on an ephemeral port, hits the stats
// endpoint over real HTTP, and shuts it down with SIGTERM.
func TestSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-max-sessions", "4")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	var addr string
	scanner := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if scanner.Scan() {
			lineCh <- scanner.Text()
		}
		close(lineCh)
	}()
	select {
	case line := <-lineCh:
		const prefix = "strixserv: listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected first line %q", line)
		}
		addr = strings.TrimPrefix(line, prefix)
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its address")
	}

	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats struct {
		MaxSessions int `json:"max_sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.MaxSessions != 4 {
		t.Errorf("max_sessions = %d, want the configured 4", stats.MaxSessions)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestBadFlags asserts a bad listen address fails fast with a non-zero
// exit.
func TestBadFlags(t *testing.T) {
	bin := cmdtest.Build(t)
	out, err := cmdtest.RunErr(t, bin, "-addr", "not-an-address")
	if err == nil {
		t.Errorf("bad -addr succeeded:\n%s", out)
	}
}
