package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/cmd/internal/cmdtest"
)

// TestSmoke starts strixserv on an ephemeral port, hits the stats
// endpoint over real HTTP, and shuts it down with SIGTERM.
func TestSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-max-sessions", "4")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	var addr string
	scanner := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if scanner.Scan() {
			lineCh <- scanner.Text()
		}
		close(lineCh)
	}()
	select {
	case line := <-lineCh:
		const prefix = "strixserv: listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected first line %q", line)
		}
		addr = strings.TrimPrefix(line, prefix)
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its address")
	}

	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats struct {
		MaxSessions int `json:"max_sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.MaxSessions != 4 {
		t.Errorf("max_sessions = %d, want the configured 4", stats.MaxSessions)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestBadFlags asserts a bad listen address fails fast with a non-zero
// exit.
func TestBadFlags(t *testing.T) {
	bin := cmdtest.Build(t)
	out, err := cmdtest.RunErr(t, bin, "-addr", "not-an-address")
	if err == nil {
		t.Errorf("bad -addr succeeded:\n%s", out)
	}
}
