// Package cmdtest holds the subprocess helpers behind the cmd/ smoke
// tests: each binary is compiled once with the host `go` toolchain and
// driven end to end (flag parsing plus one tiny workload), so the four
// command-line entry points are covered by `go test ./...` like any other
// package.
package cmdtest

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// Timeout bounds one subprocess run. Smoke workloads use the fast test
// parameter set, so minutes of headroom is already generous.
const Timeout = 4 * time.Minute

// Build compiles the command package in the test's working directory
// (tests run in their package dir, so "." is the cmd being tested) into a
// per-test temp dir and returns the binary path.
func Build(t *testing.T) string {
	t.Helper()
	bin := t.TempDir() + "/cmd.bin"
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// BuildPkg compiles a sibling command package by import path (e.g.
// "repro/cmd/strixserv") into a per-test temp dir and returns the binary
// path — for smoke tests that orchestrate more than one binary, like the
// router cluster boot.
func BuildPkg(t *testing.T, pkg string) string {
	t.Helper()
	bin := t.TempDir() + "/" + pkg[strings.LastIndex(pkg, "/")+1:] + ".bin"
	out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// Run executes the binary and returns its combined output, failing the
// test on a non-zero exit.
func Run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := RunErr(t, bin, args...)
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", bin, strings.Join(args, " "), err, out)
	}
	return out
}

// RunErr executes the binary and returns its combined output and exit
// error — for asserting that bad flags fail.
func RunErr(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), Timeout)
	defer cancel()
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("%s %s: timed out after %v", bin, strings.Join(args, " "), Timeout)
	}
	return string(out), err
}

// WantSubstrings fails the test unless every substring appears in out.
func WantSubstrings(t *testing.T, out string, subs ...string) {
	t.Helper()
	for _, sub := range subs {
		if !strings.Contains(out, sub) {
			t.Errorf("output missing %q:\n%s", sub, out)
		}
	}
}
