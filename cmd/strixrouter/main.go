// Command strixrouter runs the gate service's routing tier: an HTTP
// front that consistent-hashes client sessions across a pool of
// strixserv backends and presents the same API as a single node.
//
// Placement follows eval-key gravity: evaluation keys are megabytes
// while ciphertext batches are kilobytes, so each client session pins to
// the node where its key registered (rendezvous hash on the client ID)
// and every subsequent envelope is forwarded there. Backends are probed
// every probe interval (/v1/healthz) with consecutive-failure ejection
// and consecutive-success re-admission; idempotent batch forwards are
// retried with jittered backoff; and a router-level inflight cap refuses
// excess load with the typed overloaded code before it reaches any node.
//
// Endpoints are strixserv's, routed: POST /v2/eval and the /v1/* shims
// forward to the owning shard, GET /v1/stats and /v1/sessions merge
// across the pool, and GET /v1/cluster reports the router's own view
// (backend health, pins). SIGINT/SIGTERM drain gracefully: new work is
// refused shutting_down while in-flight forwards finish.
//
// Usage:
//
//	strixrouter -backends http://10.0.0.7:8475,http://10.0.0.8:8475
//	strixrouter -addr 127.0.0.1:0 -backends ...   # ephemeral port (printed)
//	strixrouter -backends ... -max-inflight 512 -probe-interval 500ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	strix "repro"
)

func main() {
	addr := flag.String("addr", ":8474", "listen address (host:port; port 0 picks one)")
	backends := flag.String("backends", "", "comma-separated strixserv base URLs (required)")
	probeInterval := flag.Duration("probe-interval", 0, "health probe period (0 = default 1s)")
	maxInflight := flag.Int("max-inflight", 0, "cluster-wide inflight cap (0 = default 256)")
	maxRetries := flag.Int("max-retries", 0, "forward retries for temporary failures (0 = default 3)")
	flag.Parse()

	var pool []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			pool = append(pool, b)
		}
	}
	rt, err := strix.NewRouter(strix.RouterConfig{
		Backends:      pool,
		ProbeInterval: *probeInterval,
		MaxInflight:   *maxInflight,
		MaxRetries:    *maxRetries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "strixrouter:", err)
		os.Exit(1)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strixrouter:", err)
		os.Exit(1)
	}
	fmt.Printf("strixrouter: listening on %s\n", l.Addr())
	fmt.Printf("strixrouter: routing %d backends\n", len(pool))

	// SIGINT/SIGTERM trigger a graceful drain: refuse new envelopes with
	// shutting_down, let in-flight forwards finish on their backends.
	drain := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Println("strixrouter: draining")
		close(drain)
	}()

	if err := strix.ServeRouterDrain(l, rt, drain); err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, "strixrouter:", err)
		os.Exit(1)
	}
	fmt.Println("strixrouter: drained, exiting")
}
