package main

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	strix "repro"
	"repro/cmd/internal/cmdtest"
	"repro/internal/engine"
	"repro/internal/tfhe"
)

// startProc launches a built binary, waits for its listening announcement
// on stdout (the first line, "PREFIX listening on ADDR"), and returns the
// process and bound address. Killed at test cleanup if still running.
func startProc(t *testing.T, bin, prefix string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	lineCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		if scanner.Scan() {
			lineCh <- scanner.Text()
		}
		close(lineCh)
		// Drain the rest so the child never blocks on a full pipe.
		for scanner.Scan() {
		}
	}()
	select {
	case line := <-lineCh:
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected first line %q, want prefix %q", line, prefix)
		}
		return cmd, strings.TrimPrefix(line, prefix)
	case <-time.After(30 * time.Second):
		t.Fatal("process never announced its address")
		return nil, ""
	}
}

// stopProc SIGTERMs the process and requires a clean drain + exit.
func stopProc(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("process did not exit after SIGTERM")
	}
}

// TestClusterSmoke boots a real two-backend cluster — two strixserv
// processes plus a strixrouter process in front — registers a key through
// the router, evaluates a gate batch end to end, checks the cluster view
// reports both backends healthy, and drains the router with SIGTERM.
func TestClusterSmoke(t *testing.T) {
	routerBin := cmdtest.Build(t)
	servBin := cmdtest.BuildPkg(t, "repro/cmd/strixserv")

	const servPrefix = "strixserv: listening on "
	_, addrA := startProc(t, servBin, servPrefix, "-addr", "127.0.0.1:0")
	_, addrB := startProc(t, servBin, servPrefix, "-addr", "127.0.0.1:0")

	rtCmd, rtAddr := startProc(t, routerBin, "strixrouter: listening on ",
		"-addr", "127.0.0.1:0",
		"-backends", "http://"+addrA+",http://"+addrB,
		"-probe-interval", "100ms")

	// The whole single-node API must work through the routing tier.
	rng := rand.New(rand.NewSource(11))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	cl := strix.Dial("http://"+rtAddr, "smoke-client")
	if err := cl.RegisterKey(ek); err != nil {
		t.Fatalf("register through router: %v", err)
	}
	bits := []bool{true, false, true, true}
	a := make([]tfhe.LWECiphertext, len(bits))
	b := make([]tfhe.LWECiphertext, len(bits))
	for i, bit := range bits {
		a[i] = sk.EncryptBool(rng, bit)
		b[i] = sk.EncryptBool(rng, true)
	}
	out, err := cl.GateBatch(engine.NAND, a, b)
	if err != nil {
		t.Fatalf("gate batch through router: %v", err)
	}
	for i, bit := range bits {
		if got := sk.DecryptBool(out[i]); got != !(bit && true) {
			t.Errorf("NAND(bits[%d], true) = %v, want %v", i, got, !bit)
		}
	}

	// The cluster view must show both backends healthy and the session
	// pinned to exactly one of them.
	resp, err := http.Get("http://" + rtAddr + "/v1/cluster")
	if err != nil {
		t.Fatalf("GET /v1/cluster: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status %d", resp.StatusCode)
	}
	var cluster struct {
		Backends []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
			Pins    int    `json:"pins"`
		} `json:"backends"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cluster); err != nil {
		t.Fatal(err)
	}
	if len(cluster.Backends) != 2 || cluster.Draining {
		t.Fatalf("cluster view = %+v, want 2 backends, not draining", cluster)
	}
	pins := 0
	for _, be := range cluster.Backends {
		if !be.Healthy {
			t.Errorf("backend %s unhealthy in cluster view", be.URL)
		}
		pins += be.Pins
	}
	if pins != 1 {
		t.Errorf("total pins = %d, want the one registered session", pins)
	}

	stopProc(t, rtCmd)
}

// TestBadFlags asserts the router refuses to start without backends and
// with a malformed listen address.
func TestBadFlags(t *testing.T) {
	bin := cmdtest.Build(t)
	if out, err := cmdtest.RunErr(t, bin); err == nil {
		t.Errorf("missing -backends succeeded:\n%s", out)
	}
	out, err := cmdtest.RunErr(t, bin, "-backends", "http://127.0.0.1:1", "-addr", "not-an-address")
	if err == nil {
		t.Errorf("bad -addr succeeded:\n%s", out)
	}
}
