// Command strixbench regenerates the tables and figures of the Strix paper
// (MICRO 2023) from the models in this repository.
//
// Usage:
//
//	strixbench -list
//	strixbench -exp all
//	strixbench -exp table5 -format csv
//	strixbench -exp fig1 -full   # Fig 1 with full-scale set I (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/tfhe"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	format := flag.String("format", "text", "output format: text or csv")
	list := flag.Bool("list", false, "list experiment ids and exit")
	full := flag.Bool("full", false, "run fig1 with full-scale parameter set I (slow)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var reports []experiments.Report
	var err error
	switch {
	case *exp == "fig1" && *full:
		var r experiments.Report
		r, err = experiments.Fig1(tfhe.ParamsI, 1)
		reports = []experiments.Report{r}
	case *exp == "all":
		reports, err = experiments.RunAll()
	default:
		var r experiments.Report
		r, err = experiments.Run(*exp)
		reports = []experiments.Report{r}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "strixbench:", err)
		os.Exit(1)
	}

	for i, r := range reports {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "csv":
			fmt.Print(r.CSV())
		default:
			fmt.Print(r.Text())
		}
	}
}
