// Command strixbench regenerates the tables and figures of the Strix paper
// (MICRO 2023) from the models in this repository, and measures the
// software batch-bootstrapping engine against the model's predictions.
//
// Usage:
//
//	strixbench -list
//	strixbench -exp all
//	strixbench -exp table5 -format csv
//	strixbench -exp fig1 -full         # Fig 1 with full-scale set I (slow)
//	strixbench -batch 256              # measured vs predicted PBS/s, NumCPU workers
//	strixbench -batch 256 -parallel 4  # ... with an explicit worker count
//	strixbench -batch 64 -set I        # ... on a full-scale parameter set (slow)
//	strixbench -batch 256 -kernel ref  # ... on the pure-Go reference FFT kernels
//	strixbench -stream 256             # two-level streaming pipeline PBS/s
//	strixbench -stream 256 -parallel 4 # ... with 4 blind-rotate workers
//	strixbench -serve -clients 4       # end-to-end gate service PBS/s
//	strixbench -serve -clients 8 -gates 32 -parallel 4
//	strixbench -circuit 4              # scheduled vs sequential multiply PBS/s
//	strixbench -circuit 4 -parallel 8  # ... with explicit engine widths
//	strixbench -multilut 4             # multi-value PBS vs 4 independent LUTs
//	strixbench -infer 64               # encrypted cellCNN-style inference inf/s
//	strixbench -infer 64 -clients 4    # ... coalesced across concurrent sessions
//	strixbench -restore 4              # cold-start session restore latency
//	strixbench -cluster 2              # routed scale-out: 2 nodes vs 1 node PBS/s
//	strixbench -cluster 2 -clients 8 -gates 32
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	strix "repro"
	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/intops"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

// runBatch measures the worker-pool engine on a batch of real PBS+KS gate
// pipelines and prints the measured throughput next to the accelerator
// model's prediction for the same parameter set.
func runBatch(set string, batch, workers int) error {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	fmt.Printf("batch mode: set %s, %d PBS+KS per batch, %d workers\n", p.Name, batch, workers)
	fmt.Print("generating keys... ")
	start := time.Now()
	rng := rand.New(rand.NewSource(1))
	sk, ek := tfhe.GenerateKeys(rng, p)
	fmt.Printf("done (%.2fs)\n", time.Since(start).Seconds())

	cts := make([]tfhe.LWECiphertext, batch)
	for i := range cts {
		cts[i] = sk.EncryptBool(rng, i%2 == 0)
	}

	// Warm one batch (first-touch twiddle tables, pool buffers), then time.
	eng := engine.New(ek, engine.Config{Workers: workers})
	if _, err := eng.BatchGate(engine.NAND, cts[:min(8, batch)], cts[:min(8, batch)]); err != nil {
		return err
	}
	eng.ResetCounters()

	start = time.Now()
	if _, err := eng.BatchGate(engine.NAND, cts, cts); err != nil {
		return err
	}
	elapsed := time.Since(start)
	counters := eng.Counters()
	measured := float64(counters.PBSCount) / elapsed.Seconds()

	fmt.Printf("software : %d PBS (+KS) in %v  =  %.1f PBS/s  (%d workers)\n",
		counters.PBSCount, elapsed.Round(time.Millisecond), measured, workers)

	model, err := arch.NewModel(arch.DefaultConfig(), p)
	if err != nil {
		fmt.Printf("accelerator model unavailable for set %s: %v\n", p.Name, err)
		return nil
	}
	predicted := model.ThroughputPBS()
	fmt.Printf("strix    : predicted %.1f PBS/s  (%.0f× the software pool)\n",
		predicted, predicted/measured)
	return nil
}

// runStream measures the two-level streaming pipeline (modswitch → blind
// rotate → extract → fused keyswitch, shared sign test vector) on a batch
// of gate pipelines and prints measured PBS/s next to the accelerator
// model's prediction, on the same axis as -batch.
func runStream(set string, batch, workers int) error {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	fmt.Printf("stream mode: set %s, %d PBS+KS per stream, %d rotate workers\n", p.Name, batch, workers)
	fmt.Print("generating keys... ")
	start := time.Now()
	rng := rand.New(rand.NewSource(1))
	sk, ek := tfhe.GenerateKeys(rng, p)
	fmt.Printf("done (%.2fs)\n", time.Since(start).Seconds())

	cts := make([]tfhe.LWECiphertext, batch)
	for i := range cts {
		cts[i] = sk.EncryptBool(rng, i%2 == 0)
	}

	// Warm one short stream (twiddle tables, stage goroutine paths), then time.
	s := engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: workers})
	if _, err := s.StreamGate(engine.NAND, cts[:min(8, batch)], cts[:min(8, batch)]); err != nil {
		return err
	}
	s.ResetCounters()

	start = time.Now()
	if _, err := s.StreamGate(engine.NAND, cts, cts); err != nil {
		return err
	}
	elapsed := time.Since(start)
	counters := s.Counters()
	measured := float64(counters.PBSCount) / elapsed.Seconds()

	fmt.Printf("software : %d PBS (+fused KS) in %v  =  %.1f PBS/s  (%d rotate + %d KS workers)\n",
		counters.PBSCount, elapsed.Round(time.Millisecond), measured, s.RotateWorkers(), s.KSWorkers())

	model, err := arch.NewModel(arch.DefaultConfig(), p)
	if err != nil {
		fmt.Printf("accelerator model unavailable for set %s: %v\n", p.Name, err)
		return nil
	}
	predicted := model.ThroughputPBS()
	fmt.Printf("strix    : predicted %.1f PBS/s  (%.0f× the software pipeline)\n",
		predicted, predicted/measured)
	return nil
}

// runServe measures the networked gate service end to end: it starts an
// in-process strixserv-equivalent HTTP server, registers `clients`
// sessions (each with its own keys — the session-sharded multi-user
// scenario), fires one gate batch per client concurrently, and prints the
// end-to-end PBS/s (HTTP framing + wire codec + coalescing + streaming
// engines) next to the in-process streaming number for the same workload.
func runServe(set string, clients, gates, workers int) error {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return err
	}
	if clients < 1 {
		return fmt.Errorf("-clients must be >= 1, got %d", clients)
	}
	if gates < 1 {
		return fmt.Errorf("-gates must be >= 1, got %d", gates)
	}

	fmt.Printf("serve mode: set %s, %d clients x %d gates, %d rotate workers/session\n",
		p.Name, clients, gates, workers)

	srv := strix.NewGateService(strix.ServiceConfig{
		Stream: engine.StreamConfig{RotateWorkers: workers},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go func() { _ = strix.Serve(l, srv) }()
	base := "http://" + l.Addr().String()

	type clientState struct {
		sk   tfhe.SecretKeys
		cl   *strix.GateClient
		a, b []tfhe.LWECiphertext
		bits []bool
	}
	fmt.Print("generating keys + registering sessions... ")
	start := time.Now()
	states := make([]*clientState, clients)
	for i := range states {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		sk, ek := tfhe.GenerateKeys(rng, p)
		cl := strix.Dial(base, fmt.Sprintf("load-client-%d", i))
		if err := cl.RegisterKey(ek); err != nil {
			return err
		}
		st := &clientState{sk: sk, cl: cl}
		st.bits = make([]bool, gates)
		st.a = make([]tfhe.LWECiphertext, gates)
		st.b = make([]tfhe.LWECiphertext, gates)
		for g := 0; g < gates; g++ {
			st.bits[g] = (i+g)%2 == 0
			st.a[g] = sk.EncryptBool(rng, st.bits[g])
			st.b[g] = sk.EncryptBool(rng, (g%3) == 0)
		}
		states[i] = st
	}
	fmt.Printf("done (%.2fs)\n", time.Since(start).Seconds())

	// Warm every session (twiddle tables, HTTP connections), then time.
	for _, st := range states {
		if _, err := st.cl.GateBatch(engine.NAND, st.a[:min(4, gates)], st.b[:min(4, gates)]); err != nil {
			return err
		}
	}

	start = time.Now()
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *clientState) {
			defer wg.Done()
			out, err := st.cl.GateBatch(engine.NAND, st.a, st.b)
			if err == nil && len(out) != gates {
				err = fmt.Errorf("client %d: got %d outputs, want %d", i, len(out), gates)
			}
			errs[i] = err
		}(i, st)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	total := clients * gates
	e2e := float64(total) / elapsed.Seconds()
	fmt.Printf("service  : %d PBS (+fused KS) over HTTP in %v  =  %.1f PBS/s  (%d sessions)\n",
		total, elapsed.Round(time.Millisecond), e2e, clients)

	// In-process streaming baseline: the same gate count through one
	// streaming engine, no network and no codec.
	rng := rand.New(rand.NewSource(999))
	sk, ek := tfhe.GenerateKeys(rng, p)
	a := make([]tfhe.LWECiphertext, total)
	b := make([]tfhe.LWECiphertext, total)
	for i := range a {
		a[i] = sk.EncryptBool(rng, i%2 == 0)
		b[i] = sk.EncryptBool(rng, i%3 == 0)
	}
	s := engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: workers})
	if _, err := s.StreamGate(engine.NAND, a[:min(8, total)], b[:min(8, total)]); err != nil {
		return err
	}
	start = time.Now()
	if _, err := s.StreamGate(engine.NAND, a, b); err != nil {
		return err
	}
	inproc := float64(total) / time.Since(start).Seconds()
	fmt.Printf("in-proc  : %.1f PBS/s streaming  (service overhead %.1f%%)\n",
		inproc, 100*(1-e2e/inproc))

	model, err := arch.NewModel(arch.DefaultConfig(), p)
	if err != nil {
		fmt.Printf("accelerator model unavailable for set %s: %v\n", p.Name, err)
		return nil
	}
	predicted := model.ThroughputPBS()
	fmt.Printf("strix    : predicted %.1f PBS/s  (%.0f× the service)\n", predicted, predicted/e2e)
	return nil
}

// runMultiLUT measures multi-value PBS against k independent LUT
// evaluations over the same inputs — the fan-out workload where one blind
// rotation serves k lookup tables. Before timing, it verifies the
// multi-value outputs decode identically to k independent EvalLUT calls
// for every message in the space, that the k=1 lane is bitwise identical
// to the plain EvalLUT path, and that the streaming engine reproduces the
// sequential multi-value path bitwise.
func runMultiLUT(set string, k, workers int) error {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return err
	}
	const space = 4
	if err := p.ValidateMultiLUT(space, k); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	fmt.Printf("multilut mode: set %s, space %d, k=%d tables per rotation\n", p.Name, space, k)
	fmt.Print("generating keys... ")
	start := time.Now()
	rng := rand.New(rand.NewSource(1))
	sk, ek := tfhe.GenerateKeys(rng, p)
	fmt.Printf("done (%.2fs)\n", time.Since(start).Seconds())

	fs := make([]func(int) int, k)
	for i := range fs {
		i := i
		fs[i] = func(m int) int { return (m*m + i) % space }
	}

	// Verify across the whole message space before timing anything.
	ev := tfhe.NewEvaluator(ek)
	ref := tfhe.NewEvaluator(ek)
	s := engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: workers})
	for m := 0; m < space; m++ {
		ct := sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, space), p.LWEStdDev)
		multi := ev.EvalMultiLUTKS(ct, space, fs)
		streamed, err := s.StreamMultiLUT([]tfhe.LWECiphertext{ct}, space, fs)
		if err != nil {
			return err
		}
		for j := range fs {
			indep := ref.EvalLUTKS(ct, space, fs[j])
			got := tfhe.DecodePBSMessage(sk.LWE.Phase(multi[j]), space)
			want := tfhe.DecodePBSMessage(sk.LWE.Phase(indep), space)
			if got != want || want != fs[j](m) {
				return fmt.Errorf("m=%d table %d: multi-value decodes to %d, independent EvalLUT to %d, plaintext %d", m, j, got, want, fs[j](m))
			}
			if !sameLWE(multi[j], streamed[0][j]) {
				return fmt.Errorf("m=%d table %d: streaming engine differs from sequential multi-value path", m, j)
			}
			if k == 1 && !sameLWE(multi[j], indep) {
				return fmt.Errorf("m=%d: k=1 multi-value output is not bitwise identical to EvalLUT", m)
			}
		}
	}
	fmt.Printf("verified : all %d messages decode like %d independent EvalLUT calls; streaming bitwise = sequential", space, k)
	if k == 1 {
		fmt.Print("; k=1 lane bitwise = EvalLUT")
	}
	fmt.Println()

	// Time the two strategies over one batch on one evaluator, so the
	// ratio isolates the algorithmic saving (k outputs per rotation).
	const batch = 32
	cts := make([]tfhe.LWECiphertext, batch)
	for i := range cts {
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(i%space, space), p.LWEStdDev)
	}
	ev.Counters.Reset()
	start = time.Now()
	for _, ct := range cts {
		for j := range fs {
			ref.EvalLUTKS(ct, space, fs[j])
		}
	}
	klut := time.Since(start)
	start = time.Now()
	for _, ct := range cts {
		ev.EvalMultiLUTKS(ct, space, fs)
	}
	multi := time.Since(start)
	outs := batch * k
	fmt.Printf("k·LUT    : %d outputs via %d rotations in %v  =  %.1f LUT/s\n",
		outs, outs, klut.Round(time.Millisecond), float64(outs)/klut.Seconds())
	fmt.Printf("multilut : %d outputs via %d rotations in %v  =  %.1f LUT/s  (%.1f rotations/s, %.2fx k·LUT)\n",
		outs, ev.Counters.PBSCount, multi.Round(time.Millisecond), float64(outs)/multi.Seconds(),
		float64(ev.Counters.PBSCount)/multi.Seconds(), klut.Seconds()/multi.Seconds())
	fmt.Printf("saved    : %d of %d rotations (%.0f%%)\n",
		ev.Counters.MultiValueOuts-ev.Counters.MultiValuePBS, outs,
		100*float64(ev.Counters.MultiValueOuts-ev.Counters.MultiValuePBS)/float64(outs))
	return nil
}

// runInfer measures the encrypted cellCNN-style inference scenario end
// to end: an in-process gate service, clients uploading encrypted
// feature vectors through the v2 infer envelope, class scores coming
// back encrypted. Before timing it verifies the full input sweep —
// every feature vector the model admits — decodes identical to the
// quantized cleartext reference and reports the prediction agreement,
// then times a `count`-inference batch per client, plain and with the
// server-side optimizer, reporting inferences/s.
func runInfer(set string, count, clients, workers int) error {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return err
	}
	if count < 1 {
		return fmt.Errorf("-infer inference count must be >= 1, got %d", count)
	}
	if clients < 1 {
		return fmt.Errorf("-clients must be >= 1, got %d", clients)
	}

	fmt.Printf("infer mode: set %s, %d clients x %d inferences (%d features each)\n",
		p.Name, clients, count, strix.InferFeatures)
	sweep := strix.InferSweep()
	srv := strix.NewGateService(strix.ServiceConfig{
		Stream:   engine.StreamConfig{RotateWorkers: workers},
		MaxBatch: strix.InferFeatures * max(len(sweep), clients*count),
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go func() { _ = strix.Serve(l, srv) }()
	base := "http://" + l.Addr().String()

	fmt.Print("generating keys + registering sessions... ")
	start := time.Now()
	type clientState struct {
		sk  tfhe.SecretKeys
		cl  *strix.GateClient
		cts []tfhe.LWECiphertext
	}
	states := make([]*clientState, clients)
	for i := range states {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		sk, ek := tfhe.GenerateKeys(rng, p)
		cl := strix.Dial(base, fmt.Sprintf("infer-client-%d", i))
		if err := cl.RegisterKey(ek); err != nil {
			return err
		}
		st := &clientState{sk: sk, cl: cl}
		for v := 0; v < count; v++ {
			for m := 0; m < strix.InferFeatures; m++ {
				st.cts = append(st.cts, sk.LWE.Encrypt(rng,
					tfhe.EncodePBSMessage(rng.Intn(strix.InferDigitMax+1), strix.InferSpace), p.LWEStdDev))
			}
		}
		states[i] = st
	}
	fmt.Printf("done (%.2fs)\n", time.Since(start).Seconds())

	// Verify the full input domain against the cleartext reference before
	// timing anything, through client 0's session.
	st0 := states[0]
	rng := rand.New(rand.NewSource(1000))
	var sweepCts []tfhe.LWECiphertext
	for _, v := range sweep {
		for _, m := range v {
			sweepCts = append(sweepCts, st0.sk.LWE.Encrypt(rng,
				tfhe.EncodePBSMessage(m, strix.InferSpace), p.LWEStdDev))
		}
	}
	got, err := st0.cl.Infer(sweepCts, strix.EvalOpts{Optimize: true})
	if err != nil {
		return err
	}
	agree := 0
	for i, v := range sweep {
		want, err := strix.InferReference(v)
		if err != nil {
			return err
		}
		dec := make([]int, strix.InferClasses)
		for k := range dec {
			dec[k] = tfhe.DecodePBSMessage(st0.sk.LWE.Phase(got[i][k]), strix.InferSpace)
			if dec[k] != want[k] {
				return fmt.Errorf("sweep vector %v score %d decodes to %d, want %d", v, k, dec[k], want[k])
			}
		}
		if strix.InferPredict(dec) == strix.InferPredict(want) {
			agree++
		}
	}
	fmt.Printf("verified : all %d sweep vectors decode identical to the cleartext reference; prediction agreement %d/%d (%.1f%%)\n",
		len(sweep), agree, len(sweep), 100*float64(agree)/float64(len(sweep)))

	// Time the client batches concurrently (one infer envelope per
	// session — concurrent sessions coalesce in the service's
	// group-commit window), plain and optimized.
	for _, opts := range []strix.EvalOpts{{}, {Optimize: true}} {
		label := "plain    "
		if opts.Optimize {
			label = "optimized"
		}
		// Warm sessions and HTTP connections.
		for _, st := range states {
			if _, err := st.cl.Infer(st.cts[:strix.InferFeatures], opts); err != nil {
				return err
			}
		}
		start = time.Now()
		errs := make([]error, clients)
		var wg sync.WaitGroup
		for i, st := range states {
			wg.Add(1)
			go func(i int, st *clientState) {
				defer wg.Done()
				out, err := st.cl.Infer(st.cts, opts)
				if err == nil && len(out) != count {
					err = fmt.Errorf("client %d: %d score groups, want %d", i, len(out), count)
				}
				errs[i] = err
			}(i, st)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		total := clients * count
		fmt.Printf("%s: %d inferences over HTTP in %v  =  %.1f inf/s\n",
			label, total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	}
	return nil
}

// sameLWE compares two LWE ciphertexts bitwise.
func sameLWE(a, b tfhe.LWECiphertext) bool { return tfhe.EqualLWE(a, b) }

// runNode is the hidden -node mode: this process becomes one cluster
// backend, a full gate service on an ephemeral port with a single rotate
// worker per session so that -cluster measures scale-out across nodes,
// not within one. The parent reads the announced address from stdout.
func runNode(workers int) error {
	if workers <= 0 {
		workers = 1
	}
	srv := strix.NewGateService(strix.ServiceConfig{
		Stream: engine.StreamConfig{RotateWorkers: workers},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("strixbench-node: listening on %s\n", l.Addr())
	return strix.Serve(l, srv)
}

// startNode re-execs this binary as one cluster backend (-node) with
// GOMAXPROCS pinned to 1 — every node gets the same fixed hardware share
// — and returns its base URL and a stopper.
func startNode() (string, func(), error) {
	cmd := exec.Command(os.Args[0], "-node")
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop := func() { cmd.Process.Kill(); cmd.Wait() }
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		stop()
		return "", nil, fmt.Errorf("cluster node produced no output")
	}
	line := scanner.Text()
	const prefix = "strixbench-node: listening on "
	if !strings.HasPrefix(line, prefix) {
		stop()
		return "", nil, fmt.Errorf("unexpected node announcement %q", line)
	}
	go func() { // drain so the child never blocks on a full pipe
		for scanner.Scan() {
		}
	}()
	return "http://" + strings.TrimPrefix(line, prefix), stop, nil
}

// clusterPass routes one timed workload through a fresh router over the
// given backends: `clients` sessions with shard-balanced IDs, a warm
// batch each, then one timed concurrent gate batch per session. Outputs
// are decrypted and checked before the aggregate PBS/s is returned.
func clusterPass(p tfhe.Params, urls []string, clients, gates int, label string) (float64, error) {
	rt, err := strix.NewRouter(strix.RouterConfig{Backends: urls})
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	go func() { _ = strix.ServeRouter(l, rt) }()
	base := "http://" + l.Addr().String()

	// Shard-balanced client IDs: walk candidates until every backend has
	// its quota, so the measured scale-out is placement-independent.
	quota := make(map[string]int, len(urls))
	for i, u := range urls {
		quota[u] = clients / len(urls)
		if i < clients%len(urls) {
			quota[u]++
		}
	}
	ids := make([]string, 0, clients)
	for i := 0; len(ids) < clients; i++ {
		id := fmt.Sprintf("%s-%d", label, i)
		if u := rt.ShardOf(id); quota[u] > 0 {
			quota[u]--
			ids = append(ids, id)
		}
	}

	type clientState struct {
		sk   tfhe.SecretKeys
		cl   *strix.GateClient
		a, b []tfhe.LWECiphertext
		want []bool
	}
	states := make([]*clientState, clients)
	for i, id := range ids {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		sk, ek := tfhe.GenerateKeys(rng, p)
		cl := strix.Dial(base, id)
		if err := cl.RegisterKey(ek); err != nil {
			return 0, err
		}
		st := &clientState{sk: sk, cl: cl}
		st.a = make([]tfhe.LWECiphertext, gates)
		st.b = make([]tfhe.LWECiphertext, gates)
		st.want = make([]bool, gates)
		for g := 0; g < gates; g++ {
			x, y := (i+g)%2 == 0, g%3 == 0
			st.a[g] = sk.EncryptBool(rng, x)
			st.b[g] = sk.EncryptBool(rng, y)
			st.want[g] = !(x && y)
		}
		states[i] = st
	}

	// Warm every session (twiddle tables, HTTP connections), then time.
	for _, st := range states {
		if _, err := st.cl.GateBatch(engine.NAND, st.a[:min(4, gates)], st.b[:min(4, gates)]); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *clientState) {
			defer wg.Done()
			out, err := st.cl.GateBatch(engine.NAND, st.a, st.b)
			if err == nil && len(out) != gates {
				err = fmt.Errorf("client %s: got %d outputs, want %d", ids[i], len(out), gates)
			}
			if err == nil {
				for g := range out {
					if st.sk.DecryptBool(out[g]) != st.want[g] {
						err = fmt.Errorf("client %s gate %d: wrong NAND output", ids[i], g)
						break
					}
				}
			}
			errs[i] = err
		}(i, st)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(clients*gates) / elapsed.Seconds(), nil
}

// runCluster measures scale-out through the routing tier: N single-worker
// backend nodes are booted as subprocesses (GOMAXPROCS=1 each — fixed
// per-node hardware), a router consistent-hashes sessions across them,
// and the same concurrent multi-client workload is timed against 1 node
// and all N, reporting aggregate PBS/s and the scaling ratio.
func runCluster(set string, nodes, clients, gates int) error {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return err
	}
	if nodes < 1 || nodes > 16 {
		return fmt.Errorf("-cluster node count must be in [1,16], got %d", nodes)
	}
	if gates < 1 {
		return fmt.Errorf("-gates must be >= 1, got %d", gates)
	}
	if clients < nodes {
		clients = 2 * nodes // at least two sessions per shard
	}
	fmt.Printf("cluster mode: set %s, %d nodes (GOMAXPROCS=1 each), %d clients x %d gates\n",
		p.Name, nodes, clients, gates)

	fmt.Print("booting nodes... ")
	start := time.Now()
	urls := make([]string, nodes)
	for i := range urls {
		u, stop, err := startNode()
		if err != nil {
			return err
		}
		defer stop()
		urls[i] = u
	}
	fmt.Printf("done (%.2fs)\n", time.Since(start).Seconds())

	single, err := clusterPass(p, urls[:1], clients, gates, "cluster-single")
	if err != nil {
		return err
	}
	fmt.Printf("1 node   : %.1f PBS/s aggregate  (%d sessions on one backend)\n", single, clients)
	multi, err := clusterPass(p, urls, clients, gates, "cluster-multi")
	if err != nil {
		return err
	}
	fmt.Printf("%d nodes  : %.1f PBS/s aggregate  (sessions sharded by client ID)\n", nodes, multi)
	fmt.Printf("scale-out: %.2fx with %dx the nodes\n", multi/single, nodes)
	return nil
}

// runRestore measures cold-start session restore: sessions are
// registered against a durable gate service, the service is drained and
// a fresh one is opened over the same data directory (the crash/restart
// path strixserv -data takes on SIGTERM), and the first post-restart
// batch per session is timed — disk read + checksum + key decode +
// engine rebuild, amortized over the batch. Post-restart outputs are
// verified bitwise against the pre-restart ones, the durability
// contract.
func runRestore(set string, sessions, workers int) error {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return err
	}
	if sessions < 1 {
		return fmt.Errorf("-restore session count must be >= 1, got %d", sessions)
	}
	const gates = 8

	dir, err := os.MkdirTemp("", "strixbench-restore-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Printf("restore mode: set %s, %d sessions x %d gates, data dir %s\n", p.Name, sessions, gates, dir)

	serveOnce := func() (string, chan<- struct{}, <-chan error, error) {
		srv, err := strix.OpenGateService(strix.ServiceConfig{
			DataDir: dir,
			Stream:  engine.StreamConfig{RotateWorkers: workers},
		})
		if err != nil {
			return "", nil, nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, nil, err
		}
		drain := make(chan struct{})
		done := make(chan error, 1)
		go func() { done <- strix.ServeDrain(l, srv, drain) }()
		return "http://" + l.Addr().String(), drain, done, nil
	}

	type clientState struct {
		id   string
		a, b []tfhe.LWECiphertext
		pre  []tfhe.LWECiphertext // pre-restart outputs, the bitwise oracle
	}

	fmt.Print("registering sessions + evaluating pre-restart batches... ")
	start := time.Now()
	base, drain, done, err := serveOnce()
	if err != nil {
		return err
	}
	states := make([]*clientState, sessions)
	for i := range states {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		sk, ek := tfhe.GenerateKeys(rng, p)
		st := &clientState{id: fmt.Sprintf("restore-client-%d", i)}
		cl := strix.Dial(base, st.id)
		if err := cl.RegisterKey(ek); err != nil {
			return err
		}
		st.a = make([]tfhe.LWECiphertext, gates)
		st.b = make([]tfhe.LWECiphertext, gates)
		for g := 0; g < gates; g++ {
			st.a[g] = sk.EncryptBool(rng, (i+g)%2 == 0)
			st.b[g] = sk.EncryptBool(rng, (g%3) == 0)
		}
		out, err := cl.GateBatch(engine.NAND, st.a, st.b)
		if err != nil {
			return err
		}
		st.pre = out
		states[i] = st
	}
	close(drain)
	if err := <-done; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Printf("done (%.2fs)\n", time.Since(start).Seconds())

	// Restart over the same data directory: every first request restores
	// its session from the store.
	base, drain, done, err = serveOnce()
	if err != nil {
		return err
	}
	defer func() { close(drain); <-done }()

	start = time.Now()
	for _, st := range states {
		cl := strix.Dial(base, st.id)
		out, err := cl.GateBatch(engine.NAND, st.a, st.b)
		if err != nil {
			return fmt.Errorf("post-restart batch for %s: %w", st.id, err)
		}
		for g := range out {
			if !sameLWE(out[g], st.pre[g]) {
				return fmt.Errorf("session %s gate %d: post-restart output differs from pre-restart", st.id, g)
			}
		}
	}
	cold := time.Since(start)

	// Warm pass: same sessions, now resident — isolates the restore cost.
	start = time.Now()
	for _, st := range states {
		cl := strix.Dial(base, st.id)
		if _, err := cl.GateBatch(engine.NAND, st.a, st.b); err != nil {
			return err
		}
	}
	warm := time.Since(start)

	coldPer := cold / time.Duration(sessions)
	warmPer := warm / time.Duration(sessions)
	fmt.Printf("cold     : %d sessions restored+evaluated in %v  =  %v/session  (%.1f sessions/s)\n",
		sessions, cold.Round(time.Millisecond), coldPer.Round(time.Microsecond), float64(sessions)/cold.Seconds())
	fmt.Printf("warm     : same batches resident in %v  =  %v/session\n",
		warm.Round(time.Millisecond), warmPer.Round(time.Microsecond))
	fmt.Printf("restore  : ~%v/session overhead (disk read + checksum + key decode + engine build)\n",
		(coldPer - warmPer).Round(time.Microsecond))
	fmt.Printf("verified : post-restart outputs bitwise identical to pre-restart, no key re-upload\n")
	return nil
}

// runCircuit measures the levelizing circuit scheduler against the
// unscheduled per-gate path on a multi-digit encrypted multiply — the
// carry-chain workload whose partial products give the scheduler wide
// levels to batch. Both paths execute the identical DAG (and produce
// bitwise-identical ciphertexts, which is verified); only the dispatch
// strategy differs, so the speedup is pure scheduling.
func runCircuit(set string, digits, workers int) error {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return err
	}
	// 15 radix-4 digits is already a 2^30 value range; beyond that
	// MaxValue overflows int anyway.
	if digits < 1 || digits > 15 {
		return fmt.Errorf("-circuit digit count must be in [1,15], got %d", digits)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	fmt.Printf("circuit mode: set %s, %d-digit multiply, %d workers\n", p.Name, digits, workers)
	fmt.Print("generating keys... ")
	start := time.Now()
	rng := rand.New(rand.NewSource(1))
	sk, ek := tfhe.GenerateKeys(rng, p)
	fmt.Printf("done (%.2fs)\n", time.Since(start).Seconds())

	vx := rng.Intn(intops.MaxValue(digits) + 1)
	vy := rng.Intn(intops.MaxValue(digits) + 1)
	x, err := intops.Encrypt(rng, sk, vx, digits)
	if err != nil {
		return err
	}
	y, err := intops.Encrypt(rng, sk, vy, digits)
	if err != nil {
		return err
	}
	inputs := make([]tfhe.LWECiphertext, 0, 2*digits)
	inputs = append(inputs, x.Digits...)
	inputs = append(inputs, y.Digits...)

	circ, err := intops.MulCircuit(digits)
	if err != nil {
		return err
	}
	schedule, err := sched.Compile(circ, sched.Config{})
	if err != nil {
		return err
	}
	st := schedule.Stats()
	fmt.Printf("plan     : %s\n", schedule)

	// Sequential reference: one evaluator, one PBS at a time, same DAG.
	ev := tfhe.NewEvaluator(ek)
	if _, err := sched.RunSequential(circ, ev, inputs); err != nil { // warm twiddles
		return err
	}
	start = time.Now()
	seqOut, err := sched.RunSequential(circ, ev, inputs)
	if err != nil {
		return err
	}
	seqElapsed := time.Since(start)
	seqRate := float64(st.TotalPBS) / seqElapsed.Seconds()
	fmt.Printf("sequential: %d PBS in %v  =  %.1f PBS/s\n",
		st.TotalPBS, seqElapsed.Round(time.Millisecond), seqRate)

	// Scheduled: levelized dispatches over both engines.
	runner := &sched.Runner{
		Batch:  engine.New(ek, engine.Config{Workers: workers}),
		Stream: engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: workers}),
	}
	if _, err := runner.RunSchedule(circ, schedule, inputs); err != nil { // warm pools
		return err
	}
	start = time.Now()
	schedOut, err := runner.RunSchedule(circ, schedule, inputs)
	if err != nil {
		return err
	}
	schedElapsed := time.Since(start)
	schedRate := float64(st.TotalPBS) / schedElapsed.Seconds()
	fmt.Printf("scheduled : %d PBS in %v  =  %.1f PBS/s  (%.2fx the per-gate path, %d workers)\n",
		st.TotalPBS, schedElapsed.Round(time.Millisecond), schedRate, schedRate/seqRate, workers)

	// Verify: bitwise-identical ciphertexts and the correct product.
	for i := range seqOut {
		if !sameLWE(seqOut[i], schedOut[i]) {
			return fmt.Errorf("scheduled output %d differs from sequential", i)
		}
	}
	want := (vx * vy) % (intops.MaxValue(digits) + 1)
	if got := intops.Decrypt(sk, intops.Int{Digits: schedOut}); got != want {
		return fmt.Errorf("decrypted product %d, want %d (%d*%d)", got, want, vx, vy)
	}
	fmt.Printf("verified  : %d * %d = %d mod %d, bitwise identical to sequential\n",
		vx, vy, want, intops.MaxValue(digits)+1)

	// Optimized: the same DAG through the full optimizer pass pipeline
	// (fewer rotations, same decoded product — not bitwise).
	opt := sched.OptAll()
	opt.MultiValueBudget = p.N
	optSchedule, err := sched.Compile(circ, sched.Config{Opt: opt})
	if err != nil {
		return err
	}
	fmt.Printf("opt plan  : %s\n", optSchedule)
	if _, err := runner.RunSchedule(circ, optSchedule, inputs); err != nil { // warm pools
		return err
	}
	start = time.Now()
	optOut, err := runner.RunSchedule(circ, optSchedule, inputs)
	if err != nil {
		return err
	}
	optElapsed := time.Since(start)
	optStats := optSchedule.Stats()
	fmt.Printf("optimized : %d PBS in %v  (%.2fx the naive schedule, -%d PBS)\n",
		optStats.TotalPBS, optElapsed.Round(time.Millisecond),
		schedElapsed.Seconds()/optElapsed.Seconds(), st.TotalPBS-optStats.TotalPBS)
	if got := intops.Decrypt(sk, intops.Int{Digits: optOut}); got != want {
		return fmt.Errorf("optimized product %d, want %d (%d*%d)", got, want, vx, vy)
	}
	fmt.Printf("verified  : optimized product decodes to %d\n", want)

	model, err := arch.NewModel(arch.DefaultConfig(), p)
	if err != nil {
		fmt.Printf("accelerator model unavailable for set %s: %v\n", p.Name, err)
		return nil
	}
	predicted := model.ThroughputPBS()
	fmt.Printf("strix     : predicted %.1f PBS/s  (%.0fx the scheduled path)\n",
		predicted, predicted/schedRate)
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	format := flag.String("format", "text", "output format: text or csv")
	list := flag.Bool("list", false, "list experiment ids and exit")
	full := flag.Bool("full", false, "run fig1 with full-scale parameter set I (slow)")
	batch := flag.Int("batch", 0, "software batch mode: PBS per batch (enables the mode)")
	stream := flag.Int("stream", 0, "streaming pipeline mode: PBS per stream (enables the mode)")
	circuit := flag.Int("circuit", 0, "circuit scheduler mode: multiply digit count (enables the mode)")
	multilut := flag.Int("multilut", 0, "multi-value PBS mode: LUT outputs per blind rotation (enables the mode)")
	infer := flag.Int("infer", 0, "encrypted inference mode: inferences per client batch (enables the mode)")
	serve := flag.Bool("serve", false, "gate service mode: end-to-end PBS/s through an HTTP server")
	restore := flag.Int("restore", 0, "durable restart mode: session count for cold-start restore latency (enables the mode)")
	cluster := flag.Int("cluster", 0, "cluster mode: backend node count for routed scale-out (enables the mode)")
	nodeMode := flag.Bool("node", false, "internal: run as one cluster backend node (used by -cluster)")
	clients := flag.Int("clients", 4, "serve mode: concurrent client sessions")
	gates := flag.Int("gates", 64, "serve mode: gates per client batch")
	parallel := flag.Int("parallel", 0, "batch/stream/serve mode: worker count (0 = NumCPU)")
	set := flag.String("set", "test", "batch/stream/serve mode: parameter set")
	kernel := flag.String("kernel", "fast", "FFT kernel set: fast (unsafe-vectorized, default) or ref (pure-Go reference)")
	flag.Parse()

	switch *kernel {
	case "fast":
		if !fft.FastKernelAvailable() {
			fmt.Println("kernel   : reference (fast kernels excluded from this build)")
		}
	case "ref":
		fft.SetFastKernel(false)
		fmt.Println("kernel   : reference (forced by -kernel ref)")
	default:
		fmt.Fprintf(os.Stderr, "strixbench: unknown -kernel %q (want fast or ref)\n", *kernel)
		os.Exit(1)
	}

	if *nodeMode {
		if err := runNode(*parallel); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	modes := 0
	for _, on := range []bool{*batch != 0, *stream != 0, *circuit != 0, *multilut != 0, *infer != 0, *serve, *restore != 0, *cluster != 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "strixbench: -batch, -stream, -circuit, -multilut, -infer, -serve, -restore, and -cluster are mutually exclusive; run them separately")
		os.Exit(1)
	}

	if *infer != 0 {
		if err := runInfer(*set, *infer, *clients, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	if *cluster != 0 {
		if err := runCluster(*set, *cluster, *clients, *gates); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	if *restore != 0 {
		if err := runRestore(*set, *restore, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	if *serve {
		if err := runServe(*set, *clients, *gates, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	if *batch != 0 {
		if *batch < 0 {
			fmt.Fprintf(os.Stderr, "strixbench: -batch must be positive, got %d\n", *batch)
			os.Exit(1)
		}
		if err := runBatch(*set, *batch, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	if *stream != 0 {
		if *stream < 0 {
			fmt.Fprintf(os.Stderr, "strixbench: -stream must be positive, got %d\n", *stream)
			os.Exit(1)
		}
		if err := runStream(*set, *stream, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	if *circuit != 0 {
		if err := runCircuit(*set, *circuit, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	if *multilut != 0 {
		if *multilut < 0 {
			fmt.Fprintf(os.Stderr, "strixbench: -multilut must be positive, got %d\n", *multilut)
			os.Exit(1)
		}
		if err := runMultiLUT(*set, *multilut, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "strixbench:", err)
			os.Exit(1)
		}
		return
	}

	var reports []experiments.Report
	var err error
	switch {
	case *exp == "fig1" && *full:
		var r experiments.Report
		r, err = experiments.Fig1(tfhe.ParamsI, 1)
		reports = []experiments.Report{r}
	case *exp == "all":
		reports, err = experiments.RunAll()
	default:
		var r experiments.Report
		r, err = experiments.Run(*exp)
		reports = []experiments.Report{r}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "strixbench:", err)
		os.Exit(1)
	}

	for i, r := range reports {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "csv":
			fmt.Print(r.CSV())
		default:
			fmt.Print(r.Text())
		}
	}
}
