package main

import (
	"testing"

	"repro/cmd/internal/cmdtest"
)

// TestSmoke builds strixbench and drives each mode with a tiny workload.
func TestSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	t.Run("list", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-list")
		cmdtest.WantSubstrings(t, out, "fig1", "table5")
	})

	t.Run("batch", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-batch", "8", "-parallel", "2", "-set", "test")
		cmdtest.WantSubstrings(t, out, "batch mode: set test", "software :", "PBS/s")
	})

	t.Run("stream", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-stream", "8", "-parallel", "2", "-set", "test")
		cmdtest.WantSubstrings(t, out, "stream mode: set test", "software :", "PBS/s")
	})

	t.Run("circuit", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-circuit", "2", "-parallel", "2", "-set", "test")
		cmdtest.WantSubstrings(t, out, "circuit mode: set test, 2-digit multiply",
			"plan     :", "sequential:", "scheduled :", "verified  :", "bitwise identical")
	})

	t.Run("multilut", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-multilut", "2", "-parallel", "2", "-set", "test")
		cmdtest.WantSubstrings(t, out, "multilut mode: set test, space 4, k=2",
			"verified :", "streaming bitwise = sequential", "multilut :", "rotations/s", "saved    :")
	})

	t.Run("multilut overpacked rejected", func(t *testing.T) {
		out, err := cmdtest.RunErr(t, bin, "-multilut", "999999", "-set", "test")
		if err == nil {
			t.Errorf("space·k > N succeeded:\n%s", out)
		}
	})

	t.Run("circuit bad digits", func(t *testing.T) {
		out, err := cmdtest.RunErr(t, bin, "-circuit", "-3")
		if err == nil {
			t.Errorf("negative digit count succeeded:\n%s", out)
		}
	})

	t.Run("serve", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-serve", "-clients", "2", "-gates", "4", "-parallel", "2", "-set", "test")
		cmdtest.WantSubstrings(t, out, "serve mode: set test, 2 clients x 4 gates",
			"service  :", "in-proc  :", "PBS/s")
	})

	t.Run("cluster", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-cluster", "2", "-clients", "2", "-gates", "4", "-set", "test")
		cmdtest.WantSubstrings(t, out, "cluster mode: set test, 2 nodes",
			"1 node   :", "2 nodes  :", "scale-out:", "PBS/s aggregate")
	})

	t.Run("cluster bad node count", func(t *testing.T) {
		out, err := cmdtest.RunErr(t, bin, "-cluster", "99")
		if err == nil {
			t.Errorf("oversized node count succeeded:\n%s", out)
		}
	})

	t.Run("one experiment", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-exp", "table5")
		cmdtest.WantSubstrings(t, out, "TABLE5", "throughput")
	})

	t.Run("exclusive modes rejected", func(t *testing.T) {
		out, err := cmdtest.RunErr(t, bin, "-batch", "4", "-stream", "4")
		if err == nil {
			t.Errorf("-batch with -stream succeeded:\n%s", out)
		}
	})

	t.Run("bad set rejected", func(t *testing.T) {
		out, err := cmdtest.RunErr(t, bin, "-serve", "-clients", "1", "-gates", "1", "-set", "nope")
		if err == nil {
			t.Errorf("unknown set succeeded:\n%s", out)
		}
	})
}
