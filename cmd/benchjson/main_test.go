package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/cmd/internal/cmdtest"
)

// sampleBench is a condensed `go test -bench` output covering every
// benchmark the gated ratios need, plus noise lines the parser must skip.
const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkBatchGate/workers=1-8     	       5	  31000000 ns/op	       100.0 gates/s
BenchmarkStreamGate/workers=1-8    	       5	  30000000 ns/op	       105.0 PBS/s
BenchmarkCircuitMul/seq-8          	       5	  75000000 ns/op	       250.0 PBS/s
BenchmarkCircuitMul/sched-w2-8     	       5	  38000000 ns/op	       500.0 PBS/s
BenchmarkCircuitMul/sched-wmax-8   	       5	  20000000 ns/op	       950.0 PBS/s
BenchmarkCircuitMul/naive-8        	       5	 100000000 ns/op	        10.0 mul/s
BenchmarkCircuitMul/optimized-8    	       5	  62500000 ns/op	        16.0 mul/s
BenchmarkMultiLUT/k=1-8            	       5	   5000000 ns/op	       200.0 LUT/s
BenchmarkMultiLUT/k=2-8            	       5	   5200000 ns/op	       385.0 LUT/s
BenchmarkMultiLUT/k=4-8            	       5	   5500000 ns/op	       727.0 LUT/s
BenchmarkSessionRestore/mem-8      	       5	   1600000 ns/op	       625.0 sessions/s
BenchmarkSessionRestore/disk-8     	       5	   2000000 ns/op	       500.0 sessions/s
BenchmarkPBS/fast-8                	       5	    800000 ns/op	      1250.0 PBS/s	    800000 ns/PBS
BenchmarkPBS/ref-8                 	       5	   1200000 ns/op	       833.3 PBS/s	   1200000 ns/PBS
BenchmarkClusterGate/nodes=1-8     	       5	  64000000 ns/op	       100.0 PBS/s
BenchmarkClusterGate/nodes=2-8     	       5	  35500000 ns/op	       180.0 PBS/s
BenchmarkInfer/serial-8            	       5	  80000000 ns/op	       100.0 inf/s
BenchmarkInfer/coalesced-8         	       5	  66000000 ns/op	       120.0 inf/s
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Benchmarks["BenchmarkCircuitMul/seq"]["PBS/s"]; got != 250.0 {
		t.Errorf("seq PBS/s = %v", got)
	}
	if got := f.Benchmarks["BenchmarkCircuitMul/seq"]["ns/op"]; got != 75000000 {
		t.Errorf("seq ns/op = %v", got)
	}
	if got := f.Gated["circuit_sched_vs_seq_w2"]; got != 2.0 {
		t.Errorf("circuit ratio = %v, want 2.0", got)
	}
	if got := f.Gated["stream_vs_batch_w1"]; got != 1.05 {
		t.Errorf("stream ratio = %v, want 1.05", got)
	}
	if got := f.Gated["multilut_vs_klut"]; got != 727.0/200.0 {
		t.Errorf("multilut ratio = %v, want %v", got, 727.0/200.0)
	}
	if got := f.Gated["restore_disk_vs_mem"]; got != 500.0/625.0 {
		t.Errorf("restore ratio = %v, want %v", got, 500.0/625.0)
	}
	if got := f.Gated["optimized_vs_naive"]; got != 1.6 {
		t.Errorf("optimized ratio = %v, want 1.6", got)
	}
	if got := f.Gated["pbs_fast_vs_ref"]; got != 1250.0/833.3 {
		t.Errorf("pbs kernel ratio = %v, want %v", got, 1250.0/833.3)
	}
	if got := f.Gated["cluster2_vs_single"]; got != 1.8 {
		t.Errorf("cluster ratio = %v, want 1.8", got)
	}
	if got := f.Gated["infer_coalesced_vs_serial"]; got != 1.2 {
		t.Errorf("infer ratio = %v, want 1.2", got)
	}
}

func TestParseBenchMissingGateBenchmark(t *testing.T) {
	partial := "BenchmarkCircuitMul/seq-8 \t 5 \t 75000000 ns/op \t 250.0 PBS/s\n"
	if _, err := parseBench(strings.NewReader(partial)); err == nil {
		t.Error("missing gate benchmarks should error, not silently drop the gate")
	}
	if _, err := parseBench(strings.NewReader("no benchmarks here")); err == nil {
		t.Error("empty input should error")
	}
}

func TestCompareGate(t *testing.T) {
	base, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	// Identical run passes at any tolerance.
	if err := compare(base, base, 0, os.Stderr); err != nil {
		t.Errorf("self-compare failed: %v", err)
	}
	// A regressed ratio inside the band passes, outside it fails.
	regressed := *base
	regressed.Gated = map[string]float64{"circuit_sched_vs_seq_w2": 1.6, "stream_vs_batch_w1": 1.05, "multilut_vs_klut": 3.6, "restore_disk_vs_mem": 0.8, "optimized_vs_naive": 1.3, "pbs_fast_vs_ref": 1.5, "cluster2_vs_single": 1.5, "infer_coalesced_vs_serial": 1.0}
	if err := compare(base, &regressed, 0.25, os.Stderr); err != nil {
		t.Errorf("20%% regression inside 25%% band failed: %v", err)
	}
	if err := compare(base, &regressed, 0.10, os.Stderr); err == nil {
		t.Error("20% regression outside 10% band passed")
	}
	// A gate missing from the current run fails.
	missing := *base
	missing.Gated = map[string]float64{"stream_vs_batch_w1": 1.05, "multilut_vs_klut": 3.6, "restore_disk_vs_mem": 0.8, "optimized_vs_naive": 1.6, "pbs_fast_vs_ref": 1.5, "cluster2_vs_single": 1.8, "infer_coalesced_vs_serial": 1.2}
	if err := compare(base, &missing, 0.25, os.Stderr); err == nil {
		t.Error("gate missing from current run passed")
	}
}

// TestCompareMissingFromBaseline pins the other direction of the
// missing-key gate: a ratio this binary defines that the committed
// baseline lacks (a new gate landed without regenerating BENCH_pbs.json)
// must fail the compare, not silently go unenforced.
func TestCompareMissingFromBaseline(t *testing.T) {
	base, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	stale := *base
	stale.Gated = map[string]float64{"circuit_sched_vs_seq_w2": 2.0, "stream_vs_batch_w1": 1.05}
	var buf strings.Builder
	err = compare(&stale, base, 0.25, &buf)
	if err == nil {
		t.Fatal("gate missing from baseline passed")
	}
	if !strings.Contains(err.Error(), "multilut_vs_klut") || !strings.Contains(err.Error(), "regenerate BENCH_pbs.json") {
		t.Errorf("missing-from-baseline failure not named: %v", err)
	}
	// Missing from both sides (two stale files) also fails.
	if err := compare(&stale, &stale, 0.25, os.Stderr); err == nil {
		t.Error("gate missing from both files passed")
	}
}

// TestCompareAbsoluteFloor pins the min field: multilut_vs_klut must be
// ≥ 1.5 even when the baseline itself dipped, and the tolerance band
// cannot reach below the floor.
func TestCompareAbsoluteFloor(t *testing.T) {
	base, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	low := *base
	low.Gated = map[string]float64{"circuit_sched_vs_seq_w2": 2.0, "stream_vs_batch_w1": 1.05, "multilut_vs_klut": 1.4, "restore_disk_vs_mem": 0.8, "optimized_vs_naive": 1.6, "pbs_fast_vs_ref": 1.5, "cluster2_vs_single": 1.8, "infer_coalesced_vs_serial": 1.2}
	// 1.4 is within 25% of the 3.635 baseline? No — but force the band
	// wide enough that only the absolute floor can catch it.
	if err := compare(base, &low, 0.99, os.Stderr); err == nil {
		t.Error("multilut ratio below the 1.5 absolute floor passed")
	}
	ok := *base
	ok.Gated = map[string]float64{"circuit_sched_vs_seq_w2": 2.0, "stream_vs_batch_w1": 1.05, "multilut_vs_klut": 1.6, "restore_disk_vs_mem": 0.8, "optimized_vs_naive": 1.6, "pbs_fast_vs_ref": 1.5, "cluster2_vs_single": 1.8, "infer_coalesced_vs_serial": 1.2}
	if err := compare(base, &ok, 0.99, os.Stderr); err != nil {
		t.Errorf("multilut ratio above the absolute floor failed: %v", err)
	}
	// The restore floor (0.25) is absolute too: a disk path that
	// collapses below it fails even inside a wide tolerance band.
	slow := *base
	slow.Gated = map[string]float64{"circuit_sched_vs_seq_w2": 2.0, "stream_vs_batch_w1": 1.05, "multilut_vs_klut": 3.6, "restore_disk_vs_mem": 0.2, "optimized_vs_naive": 1.6, "pbs_fast_vs_ref": 1.5, "cluster2_vs_single": 1.8, "infer_coalesced_vs_serial": 1.2}
	if err := compare(base, &slow, 0.99, os.Stderr); err == nil {
		t.Error("restore ratio below the 0.25 absolute floor passed")
	}
	// The optimizer gate's 1.1 floor: an "optimization" that is a wash
	// or a slowdown fails regardless of the baseline band.
	wash := *base
	wash.Gated = map[string]float64{"circuit_sched_vs_seq_w2": 2.0, "stream_vs_batch_w1": 1.05, "multilut_vs_klut": 3.6, "restore_disk_vs_mem": 0.8, "optimized_vs_naive": 1.0, "pbs_fast_vs_ref": 1.5, "cluster2_vs_single": 1.8, "infer_coalesced_vs_serial": 1.2}
	if err := compare(base, &wash, 0.99, os.Stderr); err == nil {
		t.Error("optimized ratio below the 1.1 absolute floor passed")
	}
}

// TestSmoke drives the compiled binary end to end: parse → JSON → compare.
func TestSmoke(t *testing.T) {
	bin := cmdtest.Build(t)
	dir := t.TempDir()
	benchOut := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchOut, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	baseJSON := filepath.Join(dir, "base.json")
	out := cmdtest.Run(t, bin, "-bench", benchOut, "-o", baseJSON)
	cmdtest.WantSubstrings(t, out, "wrote", "8 gated ratios")

	out = cmdtest.Run(t, bin, "-compare", baseJSON, baseJSON)
	cmdtest.WantSubstrings(t, out, "perf gate passed", "circuit_sched_vs_seq_w2", "multilut_vs_klut", "cluster2_vs_single")

	if out, err := cmdtest.RunErr(t, bin, "-compare", baseJSON); err == nil {
		t.Errorf("missing compare arg succeeded:\n%s", out)
	}
	if out, err := cmdtest.RunErr(t, bin); err == nil {
		t.Errorf("no mode succeeded:\n%s", out)
	}
}

// TestCompareClusterFloorNeedsCPUs pins the minCPUs waiver: the cluster
// scale-out floor (1.5) needs at least 2 CPUs to be physically meaningful
// — two GOMAXPROCS=1 nodes time-slicing one core scale at ≈ 1× — so on a
// 1-CPU runner the absolute floor is waived with a note, while a 2-CPU
// runner enforces it.
func TestCompareClusterFloorNeedsCPUs(t *testing.T) {
	base, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	flat := *base
	flat.Gated = map[string]float64{"circuit_sched_vs_seq_w2": 2.0, "stream_vs_batch_w1": 1.05, "multilut_vs_klut": 3.6, "restore_disk_vs_mem": 0.8, "optimized_vs_naive": 1.6, "pbs_fast_vs_ref": 1.5, "cluster2_vs_single": 0.95, "infer_coalesced_vs_serial": 1.2}

	narrow := flat
	narrow.CPUs = 1
	var buf strings.Builder
	if err := compare(base, &narrow, 0.99, &buf); err != nil {
		t.Errorf("cluster floor not waived on a 1-CPU runner: %v", err)
	}
	if !strings.Contains(buf.String(), "waived") {
		t.Errorf("no waiver note in:\n%s", buf.String())
	}

	wide := flat
	wide.CPUs = 2
	if err := compare(base, &wide, 0.99, os.Stderr); err == nil {
		t.Error("cluster ratio below the 1.5 floor passed on a 2-CPU runner")
	}
}

func TestCompareWarnsOnNarrowBaseline(t *testing.T) {
	base, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	wide := *base
	wide.CPUs = base.CPUs + 4
	var buf strings.Builder
	if err := compare(base, &wide, 0.25, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "WARNING: baseline was generated on a narrower machine") {
		t.Errorf("no narrow-baseline warning in:\n%s", buf.String())
	}
}
