// Command benchjson turns `go test -bench` output into the committed
// perf-trajectory JSON (BENCH_pbs.json) and gates CI on regressions.
//
// Raw PBS/s numbers depend on the machine that ran them, so they are
// recorded as an informational trajectory only. What CI gates on are the
// *gated ratios* — speedups between benchmarks run back-to-back on the
// same machine (scheduled vs sequential circuit execution, streaming vs
// flat batching), which are portable across hardware: a faster runner
// speeds both sides of a ratio. The compare mode fails when a gated
// ratio of the current run drops more than the tolerance below the
// committed baseline.
//
// The baseline's quality scales with where it was generated: the gated
// speedups grow with core count, so regenerate BENCH_pbs.json (`make
// bench-json`) on hardware at least as wide as the CI runners to get the
// tightest floor. The JSON records the generating machine's CPU count so
// a narrow baseline is visible in review.
//
// Usage:
//
//	go test -run '^$' -bench ... . > bench.out
//	benchjson -bench bench.out -o BENCH_pbs.json       # (re)generate baseline
//	benchjson -compare BENCH_pbs.json BENCH_new.json   # CI gate, 25% band
//	benchjson -compare -tol 0.10 base.json new.json    # tighter band
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// File is the schema of BENCH_pbs.json.
type File struct {
	Schema int `json:"schema"`
	// CPUs on the generating machine — context for the informational
	// numbers, not used by the gate.
	CPUs   int    `json:"cpus"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// metrics (ns/op plus every custom unit the benchmark reported).
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	// Gated holds the machine-portable ratios CI enforces.
	Gated map[string]float64 `json:"gated"`
}

// gatedRatio defines one machine-portable metric: numerator and
// denominator benchmark (by metric), measured in the same run. A nonzero
// min is an absolute floor on the ratio itself — enforced in compare mode
// regardless of what the baseline recorded, for claims the code must
// always honor (not merely not regress from). A nonzero minCPUs waives
// that absolute floor (with a printed note) when the current run's
// machine has fewer CPUs: some claims — cluster scale-out, most visibly —
// physically need parallel hardware to manifest.
type gatedRatio struct {
	name     string
	num, den string
	unit     string
	min      float64
	minCPUs  int
}

// The gated ratios. Both sides of each ratio run on the same machine in
// the same `go test -bench` invocation, so the quotient cancels hardware
// speed and isolates what the code controls.
var gatedRatios = []gatedRatio{
	// The PR-4 tentpole claim: levelized scheduling beats the per-gate
	// path on a multi-digit multiply (ratio ≈ min(workers, mean level
	// width) on idle multicore hardware; ≈ 1 on a single core).
	{name: "circuit_sched_vs_seq_w2", num: "BenchmarkCircuitMul/sched-w2", den: "BenchmarkCircuitMul/seq", unit: "PBS/s"},
	// The streaming pipeline must stay competitive with the flat pool at
	// equal width ("PBS/s" and "gates/s" both count one PBS per item).
	{name: "stream_vs_batch_w1", num: "BenchmarkStreamGate/workers=1", den: "BenchmarkBatchGate/workers=1", unit: "PBS/s"},
	// The multi-value PBS claim: at k=4, packing four LUTs into one
	// blind rotation must deliver at least 1.5× the throughput of four
	// independent LUT bootstraps (the saving is algorithmic — one
	// rotation instead of four — so it holds on a single core; measured
	// values sit near 3–4×).
	{name: "multilut_vs_klut", num: "BenchmarkMultiLUT/k=4", den: "BenchmarkMultiLUT/k=1", unit: "LUT/s", min: 1.5},
	// The optimizer-pipeline claim: compiling the 3-digit multiply with
	// every pass on (fusion + multi-value packing drop 19 rotations to
	// 12) must finish whole multiplies measurably faster than the naive
	// schedule on the same engines. Wall-clock mul/s, not PBS/s — fewer
	// rotations in less time leaves PBS/s flat by construction. The
	// saving is algorithmic, so the 1.1 floor holds on a single core;
	// measured values sit near the 19/12 ≈ 1.5× rotation ratio.
	{name: "optimized_vs_naive", num: "BenchmarkCircuitMul/optimized", den: "BenchmarkCircuitMul/naive", unit: "mul/s", min: 1.1},
	// The PR-6 durability claim: restoring a session from the on-disk
	// store (file read + CRC verify on a ~2 MB test-parameter key) must
	// stay within 4× of the pure decode+engine-build cost measured by
	// the in-memory store. The floor is deliberately loose — it catches
	// an fsync-on-read or per-request reopen regression, not disk speed.
	{name: "restore_disk_vs_mem", num: "BenchmarkSessionRestore/disk", den: "BenchmarkSessionRestore/mem", unit: "sessions/s", min: 0.25},
	// The PR-8 tentpole claim: the unsafe-vectorized FFT kernels must
	// make whole bootstraps at least 1.2× faster than the pure-Go
	// reference kernels on the same machine in the same run. Both sides
	// execute identical arithmetic (the reference-kernel conformance
	// backend pins them bitwise-equal), so the ratio isolates the
	// pointer-walk/unrolling win and holds on a single core.
	{name: "pbs_fast_vs_ref", num: "BenchmarkPBS/fast", den: "BenchmarkPBS/ref", unit: "PBS/s", min: 1.2},
	// The PR-9 tentpole claim: routing the same shard-balanced session set
	// across two single-CPU backend nodes must deliver at least 1.5× the
	// aggregate PBS/s of one node. Unlike the other floors this one needs
	// real parallel hardware — two pinned nodes time-slicing one core scale
	// at ≈ 1.0× by construction — so the absolute floor only applies on
	// machines with at least 2 CPUs (minCPUs); the relative
	// no-worse-than-baseline band applies everywhere.
	{name: "cluster2_vs_single", num: "BenchmarkClusterGate/nodes=2", den: "BenchmarkClusterGate/nodes=1", unit: "PBS/s", min: 1.5, minCPUs: 2},
	// The PR-10 tentpole claim: concurrent single-vector inference
	// requests coalescing in the gate service's group-commit window must
	// never fall below back-to-back serial requests on the same session —
	// the merged rotation streams amortize per-request dispatch even on a
	// single core, and fan rotations across workers on wider machines. No
	// absolute floor beyond parity: the win scales with cores, and a
	// 1-CPU baseline machine sits near 1×.
	{name: "infer_coalesced_vs_serial", num: "BenchmarkInfer/coalesced", den: "BenchmarkInfer/serial", unit: "inf/s"},
}

// metricOf returns a benchmark metric, accepting gates/s as an alias for
// PBS/s (one gate costs exactly one PBS).
func metricOf(f *File, bench, unit string) (float64, error) {
	m, ok := f.Benchmarks[bench]
	if !ok {
		return 0, fmt.Errorf("benchmark %q missing", bench)
	}
	if v, ok := m[unit]; ok {
		return v, nil
	}
	if unit == "PBS/s" {
		if v, ok := m["gates/s"]; ok {
			return v, nil
		}
	}
	return 0, fmt.Errorf("benchmark %q has no %q metric (has %v)", bench, unit, keys(m))
}

// keys lists a metric map's keys, sorted.
func keys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// benchLine matches one `go test -bench` result line:
// name[-GOMAXPROCS]  N  value unit  [value unit ...]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.+)$`)

// parseBench parses `go test -bench` output into a File.
func parseBench(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f := &File{
		Schema:     1,
		CPUs:       runtime.NumCPU(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Benchmarks: map[string]map[string]float64{},
		Gated:      map[string]float64{},
	}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[3])
		metrics := f.Benchmarks[name]
		if metrics == nil {
			metrics = map[string]float64{}
			f.Benchmarks[name] = metrics
		}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	for _, g := range gatedRatios {
		num, err := metricOf(f, g.num, g.unit)
		if err != nil {
			return nil, fmt.Errorf("gated ratio %s: %w", g.name, err)
		}
		den, err := metricOf(f, g.den, g.unit)
		if err != nil {
			return nil, fmt.Errorf("gated ratio %s: %w", g.name, err)
		}
		if den == 0 {
			return nil, fmt.Errorf("gated ratio %s: zero denominator", g.name)
		}
		f.Gated[g.name] = num / den
	}
	return f, nil
}

// loadFile reads a BENCH JSON file.
func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// compare gates current against baseline. Every gated ratio — the union
// of the ratios this binary defines and whatever either file recorded —
// must be present on BOTH sides: a key missing from the current run means
// a benchmark silently vanished, and a key missing from the baseline
// means a new gate was added without regenerating BENCH_pbs.json; both
// fail the gate rather than silently not enforcing it. A present ratio
// must sit no more than tol (fractional) below the baseline, and at or
// above its absolute floor when the ratio defines one (floors with a CPU
// requirement are waived, with a printed note, when the current machine
// is narrower). Raw benchmark deltas print informationally. Returns an
// error listing every violated gate.
func compare(baseline, current *File, tol float64, w io.Writer) error {
	fmt.Fprintf(w, "baseline: %d CPUs %s/%s; current: %d CPUs %s/%s\n",
		baseline.CPUs, baseline.GoOS, baseline.GoArch, current.CPUs, current.GoOS, current.GoArch)
	if current.CPUs > baseline.CPUs {
		fmt.Fprintf(w, "  WARNING: baseline was generated on a narrower machine (%d < %d CPUs).\n"+
			"  The gated speedup floors are lenient until someone regenerates the\n"+
			"  baseline on hardware this wide: `make bench-json` here, commit BENCH_pbs.json.\n",
			baseline.CPUs, current.CPUs)
	}

	var names []string
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := baseline.Benchmarks[name]["ns/op"]
		cur, ok2 := current.Benchmarks[name]["ns/op"]
		if ok && ok2 && base > 0 {
			fmt.Fprintf(w, "  info %-44s ns/op %12.0f -> %12.0f (%+.1f%%)\n", name, base, cur, 100*(cur-base)/base)
		}
	}

	mins := map[string]float64{}
	gateSet := map[string]bool{}
	for _, g := range gatedRatios {
		gateSet[g.name] = true
		if g.min > 0 {
			if g.minCPUs > 0 && current.CPUs < g.minCPUs {
				fmt.Fprintf(w, "  note %-44s absolute floor %.2f waived: current machine has %d CPU(s), needs >= %d\n",
					g.name, g.min, current.CPUs, g.minCPUs)
				continue
			}
			mins[g.name] = g.min
		}
	}
	for name := range baseline.Gated {
		gateSet[name] = true
	}
	for name := range current.Gated {
		gateSet[name] = true
	}
	var failures []string
	var gates []string
	for name := range gateSet {
		gates = append(gates, name)
	}
	sort.Strings(gates)
	for _, name := range gates {
		base, okBase := baseline.Gated[name]
		cur, okCur := current.Gated[name]
		floor := base * (1 - tol)
		if min, hasMin := mins[name]; hasMin && floor < min {
			floor = min
		}
		status := "ok"
		switch {
		case !okBase && !okCur:
			status = "MISSING"
			failures = append(failures, fmt.Sprintf("%s: missing from baseline and current run", name))
		case !okBase:
			status = "MISSING"
			failures = append(failures, fmt.Sprintf("%s: missing from baseline — regenerate BENCH_pbs.json (make bench-json) and commit it", name))
		case !okCur:
			status = "MISSING"
			failures = append(failures, fmt.Sprintf("%s: missing from current run", name))
		case cur < floor:
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.3f < floor %.3f (baseline %.3f, tolerance %.0f%%)", name, cur, floor, base, 100*tol))
		}
		fmt.Fprintf(w, "  gate %-44s baseline %7.3f  floor %7.3f  current %7.3f  %s\n", name, base, floor, cur, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	bench := flag.String("bench", "", "parse `go test -bench` output from this file (- for stdin)")
	out := flag.String("o", "", "write parsed JSON here (default stdout)")
	cmp := flag.Bool("compare", false, "compare mode: args are <baseline.json> <current.json>")
	tol := flag.Float64("tol", 0.25, "compare mode: allowed fractional regression of gated ratios")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *cmp {
		if flag.NArg() != 2 {
			fail(fmt.Errorf("-compare needs <baseline.json> <current.json>"))
		}
		baseline, err := loadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		current, err := loadFile(flag.Arg(1))
		if err != nil {
			fail(err)
		}
		if err := compare(baseline, current, *tol, os.Stdout); err != nil {
			fail(err)
		}
		fmt.Println("perf gate passed")
		return
	}

	if *bench == "" {
		fail(fmt.Errorf("need -bench <file> or -compare"))
	}
	var r io.Reader = os.Stdin
	if *bench != "-" {
		f, err := os.Open(*bench)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	f, err := parseBench(r)
	if err != nil {
		fail(err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d gated ratios)\n", *out, len(f.Benchmarks), len(f.Gated))
}
